//! # traj-bench
//!
//! Shared fixtures for the criterion benchmarks: deterministic clustered
//! databases and query workloads, so `build_vs_dbsize`, `query_vs_dbsize`,
//! `query_vs_k` and `distance_ops` all measure the same data shapes and
//! successive runs are comparable (`target/bench-results/*.json`).

#![warn(missing_docs)]

use traj_core::Trajectory;
use traj_gen::{GenConfig, TrajGen};
use traj_index::{Session, TrajStore, TrajTree};

/// Fixed seed for every benchmark fixture.
pub const BENCH_SEED: u64 = 0xBE9C;

/// A deterministic clustered database of `size` trajectories of 6–16
/// samples each.
pub fn make_store(size: usize) -> TrajStore {
    let mut g = TrajGen::with_config(
        BENCH_SEED,
        GenConfig {
            area: 1000.0,
            clusters: 8,
            cluster_spread: 10.0,
            step: 4.0,
            ..GenConfig::default()
        },
    );
    TrajStore::from(g.database(size, 6, 16))
}

/// A bulk-loaded index over [`make_store`]'s output.
pub fn make_index(store: &TrajStore) -> TrajTree {
    TrajTree::build(store)
}

/// A query [`Session`] over a fresh [`make_store`] database of `size`
/// trajectories — what the query benches issue their workloads through.
pub fn make_session(size: usize) -> Session {
    Session::build(make_store(size))
}

/// A [`make_session`] database partitioned across `shards` shards — what
/// `query_vs_shards` sweeps. Results are bitwise identical at any shard
/// count; only the work distribution changes.
pub fn make_sharded_session(size: usize, shards: usize) -> Session {
    Session::builder().shards(shards).build(make_store(size))
}

/// Deterministic query workload: distorted copies of database members
/// (resampled to 50%, noise σ 1.0), the realistic "same trip, different
/// sampling rate" lookup.
pub fn make_queries(store: &TrajStore, count: usize) -> Vec<Trajectory> {
    let mut g = TrajGen::new(BENCH_SEED ^ 0xFF);
    (0..count)
        .map(|i| {
            let target = ((i * 31 + 7) % store.len()) as u32;
            let resampled = g.resample(store.get(target), 0.5);
            g.perturb(&resampled, 1.0)
        })
        .collect()
}

/// Deterministic *partial-trip* query workload for the sub-trajectory
/// mode: the middle half of a stored trip, perturbed — what
/// `query_vs_sub` drives through `.sub().knn(k)`.
pub fn make_sub_queries(store: &TrajStore, count: usize) -> Vec<Trajectory> {
    let mut g = TrajGen::new(BENCH_SEED ^ 0x5B);
    (0..count)
        .map(|i| {
            let target = ((i * 29 + 5) % store.len()) as u32;
            let host = store.get(target);
            let n = host.num_points();
            let piece = host.sub_trajectory(n / 4, (3 * n / 4).max(n / 4 + 1));
            g.perturb(&piece, 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = make_store(40);
        let b = make_store(40);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.get(17), b.get(17));
        let qa = make_queries(&a, 3);
        let qb = make_queries(&b, 3);
        assert_eq!(qa, qb);
        assert_eq!(make_sub_queries(&a, 3), make_sub_queries(&b, 3));
        assert_eq!(make_index(&a).len(), 40);
        assert_eq!(make_session(40).len(), 40);
        let sharded = make_sharded_session(40, 4);
        assert_eq!((sharded.len(), sharded.num_shards()), (40, 4));
    }
}
