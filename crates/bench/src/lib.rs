//! placeholder
