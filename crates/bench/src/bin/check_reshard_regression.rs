//! Regression guard over `lifecycle_ops` bench results.
//!
//! Reads the JSON summary the vendored criterion shim writes to
//! `target/bench-results/lifecycle_ops.json` and asserts that online
//! resharding keeps its reason to exist: `reshard/4` (re-deal the live
//! set from memory, rebuild trees, one logged record, one epoch swap)
//! must cost at most `factor ×` a `full_rebuild/4` (drop the session and
//! reopen the same database cold — snapshot decode, WAL replay, the same
//! tree build). Both rows land on an identical 4-shard layout over the
//! same live set, so their means compare directly. If the online path
//! drifts up to the cold path's cost, callers may as well bounce the
//! process — the whole point of `Session::reshard` is gone.
//!
//! Usage: `cargo run -p traj-bench --bin check_reshard_regression [path]`.
//! Without an argument the file is located via `CARGO_TARGET_DIR` or by
//! walking up from the current directory to the workspace `Cargo.lock`.
//! `TRAJ_RESHARD_FACTOR` overrides the required cost ceiling (default
//! 0.5 — online must be at least twice as fast; CI's 1 ms-budget smoke
//! runs are noisy and may set a looser value). Exits 1 with the measured
//! ratio on failure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_FACTOR: f64 = 0.5;

fn main() -> ExitCode {
    let path = match std::env::args().nth(1).map(PathBuf::from) {
        Some(p) => p,
        None => match locate_results() {
            Some(p) => p,
            None => {
                eprintln!(
                    "check_reshard_regression: could not locate \
                     target/bench-results/lifecycle_ops.json; run \
                     `cargo bench -p traj-bench --bench lifecycle_ops` first \
                     or pass the path explicitly"
                );
                return ExitCode::FAILURE;
            }
        },
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "check_reshard_regression: cannot read {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let factor = match std::env::var("TRAJ_RESHARD_FACTOR") {
        Ok(s) => match s.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => v,
            _ => {
                eprintln!("check_reshard_regression: invalid TRAJ_RESHARD_FACTOR {s:?}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => DEFAULT_FACTOR,
    };

    println!(
        "checking {} (required ceiling {factor}x of a cold rebuild)",
        path.display()
    );
    let reshard = mean_ns(&text, "reshard", "4");
    let rebuild = mean_ns(&text, "full_rebuild", "4");
    let (reshard, rebuild) = match (reshard, rebuild) {
        (Some(s), Some(b)) => (s, b),
        _ => {
            eprintln!("FAIL: missing reshard/4 or full_rebuild/4 entry in results file");
            return ExitCode::FAILURE;
        }
    };
    let ratio = reshard / rebuild;
    let verdict = if ratio <= factor { "ok  " } else { "FAIL" };
    println!(
        "{verdict} online reshard {:.3} ms vs cold rebuild {:.3} ms \
         (ratio {ratio:.2}x, ceiling {factor}x)",
        reshard / 1e6,
        rebuild / 1e6,
    );
    if ratio <= factor {
        ExitCode::SUCCESS
    } else {
        eprintln!("check_reshard_regression: online reshard lost its edge over a cold rebuild");
        ExitCode::FAILURE
    }
}

/// Pull `mean_ns` for `lifecycle_ops/<row>/<param>` out of the summary
/// JSON. The shim writes one flat `{"name": ..., "mean_ns": ...}` object
/// per line, so a keyed scan is enough — no JSON dependency needed.
fn mean_ns(text: &str, row: &str, param: &str) -> Option<f64> {
    let name = format!("\"lifecycle_ops/{row}/{param}\"");
    let line = text.lines().find(|l| l.contains(&name))?;
    let rest = line.split("\"mean_ns\":").nth(1)?;
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

/// `$CARGO_TARGET_DIR/bench-results/lifecycle_ops.json`, or the same
/// under `<workspace root>/target` found by walking up to a `Cargo.lock` —
/// mirroring how the criterion shim picks its output directory.
fn locate_results() -> Option<PathBuf> {
    let rel = Path::new("bench-results").join("lifecycle_ops.json");
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        let p = Path::new(&dir).join(&rel);
        if p.is_file() {
            return Some(p);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            let p = dir.join("target").join(&rel);
            return p.is_file().then_some(p);
        }
        if !dir.pop() {
            return None;
        }
    }
}
