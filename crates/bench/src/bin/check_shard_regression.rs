//! Regression guard over `query_vs_shards` bench results.
//!
//! Reads the JSON summary the vendored criterion shim writes to
//! `target/bench-results/query_vs_shards.json` and asserts that sharding
//! the store does not regress query latency: the 4-shard `single_knn` and
//! `batch_knn_t4` rows must each stay within `slack × ` their 1-shard
//! counterparts. PR 5 shipped with 4 shards ~1.7x slower on single k-NN
//! (sequential scatter under per-shard thresholds); the forest / shared-
//! threshold traversal removed that, and this binary keeps it removed.
//!
//! Usage: `cargo run -p traj-bench --bin check_shard_regression [path]`.
//! Without an argument the file is located via `CARGO_TARGET_DIR` or by
//! walking up from the current directory to the workspace `Cargo.lock`.
//! `TRAJ_SHARD_SLACK` overrides the allowed ratio (default 1.25; CI's
//! 1 ms-budget smoke runs are noisy and set a looser value). Exits 1
//! with the offending ratios on failure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_SLACK: f64 = 1.25;
const GUARDED_ROWS: [&str; 2] = ["single_knn", "batch_knn_t4"];

fn main() -> ExitCode {
    let path = match std::env::args().nth(1).map(PathBuf::from) {
        Some(p) => p,
        None => match locate_results() {
            Some(p) => p,
            None => {
                eprintln!(
                    "check_shard_regression: could not locate \
                     target/bench-results/query_vs_shards.json; run \
                     `cargo bench -p traj-bench --bench query_vs_shards` first \
                     or pass the path explicitly"
                );
                return ExitCode::FAILURE;
            }
        },
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "check_shard_regression: cannot read {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let slack = match std::env::var("TRAJ_SHARD_SLACK") {
        Ok(s) => match s.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => v,
            _ => {
                eprintln!("check_shard_regression: invalid TRAJ_SHARD_SLACK {s:?}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => DEFAULT_SLACK,
    };

    println!("checking {} (slack {slack}x)", path.display());
    let mut failed = false;
    for row in GUARDED_ROWS {
        let base = mean_ns(&text, row, 1);
        let sharded = mean_ns(&text, row, 4);
        let (base, sharded) = match (base, sharded) {
            (Some(b), Some(s)) => (b, s),
            _ => {
                eprintln!("FAIL {row}: missing 1-shard or 4-shard entry in results file");
                failed = true;
                continue;
            }
        };
        let ratio = sharded / base;
        let verdict = if ratio <= slack { "ok  " } else { "FAIL" };
        println!(
            "{verdict} {row}: 4 shards {:.3} ms vs 1 shard {:.3} ms (ratio {ratio:.2}, limit {slack})",
            sharded / 1e6,
            base / 1e6,
        );
        if ratio > slack {
            failed = true;
        }
    }
    if failed {
        eprintln!("check_shard_regression: sharded queries regressed past the slack limit");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Pull `mean_ns` for `query_vs_shards/<row>/<shards>` out of the summary
/// JSON. The shim writes one flat `{"name": ..., "mean_ns": ..., ...}`
/// object per line, so a keyed scan is enough — no JSON dependency needed.
fn mean_ns(text: &str, row: &str, shards: usize) -> Option<f64> {
    let name = format!("\"query_vs_shards/{row}/{shards}\"");
    let line = text.lines().find(|l| l.contains(&name))?;
    let rest = line.split("\"mean_ns\":").nth(1)?;
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

/// `$CARGO_TARGET_DIR/bench-results/query_vs_shards.json`, or the same
/// under `<workspace root>/target` found by walking up to a `Cargo.lock` —
/// mirroring how the criterion shim picks its output directory.
fn locate_results() -> Option<PathBuf> {
    let rel = Path::new("bench-results").join("query_vs_shards.json");
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        let p = Path::new(&dir).join(&rel);
        if p.is_file() {
            return Some(p);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            let p = dir.join("target").join(&rel);
            return p.is_file().then_some(p);
        }
        if !dir.pop() {
            return None;
        }
    }
}
