//! Regression guard over `ingest_throughput` bench results.
//!
//! Reads the JSON summary the vendored criterion shim writes to
//! `target/bench-results/ingest_throughput.json` and asserts that the
//! group-commit fast path keeps its win: under `FsyncPolicy::Always`,
//! 64 one-record inserts (`single_64/always`) must cost at least
//! `factor ×` one 64-record group commit (`batch_64/always`). Both rows
//! move the same 64 records per iteration, so their means compare
//! directly. The factor is the point of the batched WAL path — one
//! fsync per group instead of one per record; losing it means group
//! commit quietly degenerated into a loop of singles.
//!
//! Usage: `cargo run -p traj-bench --bin check_ingest_regression [path]`.
//! Without an argument the file is located via `CARGO_TARGET_DIR` or by
//! walking up from the current directory to the workspace `Cargo.lock`.
//! `TRAJ_INGEST_FACTOR` overrides the required speedup (default 5; CI's
//! 1 ms-budget smoke runs are noisy and may set a looser value). Exits 1
//! with the measured ratio on failure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_FACTOR: f64 = 5.0;

fn main() -> ExitCode {
    let path = match std::env::args().nth(1).map(PathBuf::from) {
        Some(p) => p,
        None => match locate_results() {
            Some(p) => p,
            None => {
                eprintln!(
                    "check_ingest_regression: could not locate \
                     target/bench-results/ingest_throughput.json; run \
                     `cargo bench -p traj-bench --bench ingest_throughput` first \
                     or pass the path explicitly"
                );
                return ExitCode::FAILURE;
            }
        },
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "check_ingest_regression: cannot read {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let factor = match std::env::var("TRAJ_INGEST_FACTOR") {
        Ok(s) => match s.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => v,
            _ => {
                eprintln!("check_ingest_regression: invalid TRAJ_INGEST_FACTOR {s:?}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => DEFAULT_FACTOR,
    };

    println!("checking {} (required speedup {factor}x)", path.display());
    let single = mean_ns(&text, "single_64", "always");
    let batch = mean_ns(&text, "batch_64", "always");
    let (single, batch) = match (single, batch) {
        (Some(s), Some(b)) => (s, b),
        _ => {
            eprintln!("FAIL: missing single_64/always or batch_64/always entry in results file");
            return ExitCode::FAILURE;
        }
    };
    let speedup = single / batch;
    let verdict = if speedup >= factor { "ok  " } else { "FAIL" };
    println!(
        "{verdict} batched ingest: 64 singles {:.3} ms vs one batch of 64 {:.3} ms \
         (speedup {speedup:.2}x, required {factor}x)",
        single / 1e6,
        batch / 1e6,
    );
    if speedup >= factor {
        ExitCode::SUCCESS
    } else {
        eprintln!("check_ingest_regression: group commit lost its batching win");
        ExitCode::FAILURE
    }
}

/// Pull `mean_ns` for `ingest_throughput/<row>/<policy>` out of the
/// summary JSON. The shim writes one flat `{"name": ..., "mean_ns": ...}`
/// object per line, so a keyed scan is enough — no JSON dependency needed.
fn mean_ns(text: &str, row: &str, policy: &str) -> Option<f64> {
    let name = format!("\"ingest_throughput/{row}/{policy}\"");
    let line = text.lines().find(|l| l.contains(&name))?;
    let rest = line.split("\"mean_ns\":").nth(1)?;
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

/// `$CARGO_TARGET_DIR/bench-results/ingest_throughput.json`, or the same
/// under `<workspace root>/target` found by walking up to a `Cargo.lock` —
/// mirroring how the criterion shim picks its output directory.
fn locate_results() -> Option<PathBuf> {
    let rel = Path::new("bench-results").join("ingest_throughput.json");
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        let p = Path::new(&dir).join(&rel);
        if p.is_file() {
            return Some(p);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            let p = dir.join("target").join(&rel);
            return p.is_file().then_some(p);
        }
        if !dir.pop() {
            return None;
        }
    }
}
