//! Distance-kernel microbenchmarks: the EDwP dynamic program at several
//! trajectory sizes, and the box bounds that let the index avoid it.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_queries, make_store};
use traj_dist::{edwp, edwp_lower_bound_boxes, edwp_lower_bound_trajectory, BoxSeq};
use traj_gen::TrajGen;

fn edwp_scaling(c: &mut Criterion) {
    let mut g = TrajGen::new(5);
    let mut group = c.benchmark_group("edwp");
    for n in [8usize, 16, 32] {
        let a = g.random_walk(n);
        let b = g.random_walk(n);
        group.bench_with_input(BenchmarkId::new("full_dp", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(edwp(a, b)));
        });
    }
    group.finish();
}

fn bounds_vs_full(c: &mut Criterion) {
    let store = make_store(50);
    let queries = make_queries(&store, 4);
    let member = store.get(0);
    let seq = {
        let mut s = BoxSeq::from_trajectory(member);
        s.coalesce(Some(12));
        s
    };
    let q = &queries[0];
    let mut group = c.benchmark_group("bounds");
    group.bench_function("edwp_lower_bound_boxes", |b| {
        b.iter(|| black_box(edwp_lower_bound_boxes(q, &seq)));
    });
    group.bench_function("edwp_lower_bound_trajectory", |b| {
        b.iter(|| black_box(edwp_lower_bound_trajectory(q, member)));
    });
    group.bench_function("edwp_full", |b| {
        b.iter(|| black_box(edwp(q, member)));
    });
    group.finish();
}

criterion_group!(benches, edwp_scaling, bounds_vs_full);
criterion_main!(benches);
