//! Distance-kernel microbenchmarks: the EDwP dynamic program at several
//! trajectory sizes, and the box bounds that let the index avoid it.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_queries, make_store};
use traj_dist::simd::edwp_lower_bound_boxes_bounded_isa;
use traj_dist::{
    edwp, edwp_lower_bound_boxes, edwp_lower_bound_trajectory, BoxSeq, Cutoff, EdwpScratch, Isa,
};
use traj_gen::TrajGen;

fn edwp_scaling(c: &mut Criterion) {
    let mut g = TrajGen::new(5);
    let mut group = c.benchmark_group("edwp");
    for n in [8usize, 16, 32] {
        let a = g.random_walk(n);
        let b = g.random_walk(n);
        group.bench_with_input(BenchmarkId::new("full_dp", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(edwp(a, b)));
        });
    }
    group.finish();
}

fn bounds_vs_full(c: &mut Criterion) {
    let store = make_store(50);
    let queries = make_queries(&store, 4);
    let member = store.get(0);
    let seq = {
        let mut s = BoxSeq::from_trajectory(member);
        s.coalesce(Some(12));
        s
    };
    let q = &queries[0];
    let mut group = c.benchmark_group("bounds");
    group.bench_function("edwp_lower_bound_boxes", |b| {
        b.iter(|| black_box(edwp_lower_bound_boxes(q, &seq)));
    });
    group.bench_function("edwp_lower_bound_trajectory", |b| {
        b.iter(|| black_box(edwp_lower_bound_trajectory(q, member)));
    });
    group.bench_function("edwp_full", |b| {
        b.iter(|| black_box(edwp(q, member)));
    });

    // Scalar vs SIMD on the same box-bound workload, pinned per row via
    // the explicit-ISA entry points so neither `TRAJ_FORCE_SCALAR` nor
    // the cached dispatch can mix the two. The dispatched row above
    // (`edwp_lower_bound_boxes`) uses whatever `Isa::current()` picked.
    println!(
        "distance_ops: runtime dispatch resolved to `{}` (avx2 available: {})",
        Isa::current().name(),
        Isa::available() == Isa::Avx2
    );
    let mut scratch = EdwpScratch::new();
    group.bench_function("boxes_bounded_scalar", |b| {
        b.iter(|| {
            black_box(edwp_lower_bound_boxes_bounded_isa(
                Isa::Scalar,
                q,
                &seq,
                Cutoff::constant(f64::INFINITY),
                &mut scratch,
            ))
        });
    });
    if Isa::available() == Isa::Avx2 {
        group.bench_function("boxes_bounded_simd", |b| {
            b.iter(|| {
                black_box(edwp_lower_bound_boxes_bounded_isa(
                    Isa::Avx2,
                    q,
                    &seq,
                    Cutoff::constant(f64::INFINITY),
                    &mut scratch,
                ))
            });
        });
    } else {
        println!("distance_ops: avx2 unavailable — skipping bounds/boxes_bounded_simd");
    }
    group.finish();
}

criterion_group!(benches, edwp_scaling, bounds_vs_full);
criterion_main!(benches);
