//! Scatter-gather cost and benefit as the shard count grows, on a fixed
//! database and workload. Three rows per shard count:
//!
//! * `single_knn` — one query, every shard root seeded into one best-first
//!   forest queue (or descended on parallel workers sharing one atomic
//!   threshold when threads > 1): cross-shard pruning keeps the exact-EDwP
//!   count flat as shards grow, so wall time should stay near the 1-shard
//!   row — `check_shard_regression` enforces this;
//! * `batch_knn_t4` — 16 queries over 4 workers, one work item per query
//!   with a per-batch bound cache shared across queries: on multi-core
//!   runners higher shard counts expose more parallelism per query;
//! * `insert` — one streaming insert (copy-on-write epoch publication):
//!   more shards mean a smaller copied unit when snapshots are held.
//!
//! Results are bitwise identical across all shard counts (asserted by the
//! equivalence grid in `traj-index`); only the work distribution moves.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_queries, make_sharded_session, make_store};
use traj_gen::TrajGen;

fn query_vs_shards(c: &mut Criterion) {
    let store = make_store(600);
    let queries = make_queries(&store, 16);
    let mut group = c.benchmark_group("query_vs_shards");
    for shards in [1usize, 2, 4, 8] {
        let mut session = make_sharded_session(600, shards);
        group.bench_with_input(BenchmarkId::new("single_knn", shards), &shards, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(session.query(q).knn(10))
            });
        });
        group.bench_with_input(BenchmarkId::new("batch_knn_t4", shards), &shards, |b, _| {
            b.iter(|| black_box(session.batch(&queries).threads(4).knn(10)));
        });
        group.bench_with_input(BenchmarkId::new("insert", shards), &shards, |b, _| {
            let mut g = TrajGen::new(0x5EED);
            let trips: Vec<_> = (0..256).map(|_| g.random_walk(10)).collect();
            let mut i = 0usize;
            b.iter(|| {
                // A snapshot held *across* the insert forces the
                // copy-on-write path on the routed shard every iteration —
                // the streaming-while-reading steady state the README's
                // `.shards(n)` guidance is about. (A snapshot taken once
                // outside the loop would only share the shard until its
                // first touch; every later insert would mutate in place.)
                let epoch = session.snapshot();
                black_box(
                    session
                        .insert(trips[i % trips.len()].clone())
                        .expect("in-memory insert"),
                );
                i += 1;
                black_box(epoch.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, query_vs_shards);
criterion_main!(benches);
