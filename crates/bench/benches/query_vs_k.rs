//! k-NN query latency on a fixed database as `k` grows: larger k weakens
//! the pruning threshold, so latency should rise smoothly with k.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_index, make_queries, make_store};

fn query_vs_k(c: &mut Criterion) {
    let store = make_store(400);
    let tree = make_index(&store);
    let queries = make_queries(&store, 8);
    let mut group = c.benchmark_group("query_vs_k");
    for k in [1usize, 5, 10, 25] {
        group.bench_with_input(BenchmarkId::new("knn", k), &k, |b, &k| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(tree.knn(&store, q, k))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, query_vs_k);
criterion_main!(benches);
