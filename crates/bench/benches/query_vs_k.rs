//! k-NN query latency on a fixed database as `k` grows: larger k weakens
//! the pruning threshold, so latency should rise smoothly with k. Each k is
//! measured under both metrics — the length-normalised rows show what the
//! per-node `max_len` bound costs relative to raw EDwP.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_queries, make_store};
use traj_index::Metric;

fn query_vs_k(c: &mut Criterion) {
    let store = make_store(400);
    let queries = make_queries(&store, 8);
    let mut session = traj_index::Session::build(store);
    let mut group = c.benchmark_group("query_vs_k");
    for k in [1usize, 5, 10, 25] {
        for (label, metric) in [("knn", Metric::Edwp), ("knn_norm", Metric::EdwpNormalized)] {
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, &k| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box(session.query(q).metric(metric).knn(k))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, query_vs_k);
criterion_main!(benches);
