//! Batch k-NN throughput: one fixed workload of 32 queries answered by a
//! sequential session loop (pooled scratch) versus the batch builder at
//! growing worker counts. On a multi-core runner the batch rows should
//! beat the sequential row roughly linearly until the core count is
//! exhausted; per-query work is identical (results are bitwise equal), so
//! any gap is pure fan-out overhead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_queries, make_store};

fn query_batch_throughput(c: &mut Criterion) {
    let store = make_store(400);
    let queries = make_queries(&store, 32);
    let mut session = traj_index::Session::build(store);
    let k = 10;
    let mut group = c.benchmark_group("query_batch_throughput");
    group.bench_function("sequential_knn", |b| {
        b.iter(|| {
            let total: usize = queries
                .iter()
                .map(|q| session.query(q).knn(k).neighbors.len())
                .sum();
            black_box(total)
        });
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("batch_knn", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(session.batch(&queries).threads(threads).knn(k)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, query_batch_throughput);
criterion_main!(benches);
