use criterion::{criterion_group, criterion_main, Criterion};
fn noop(_c: &mut Criterion) {}
criterion_group!(benches, noop);
criterion_main!(benches);
