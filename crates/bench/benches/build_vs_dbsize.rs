//! TrajTree bulk-load cost as the database grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_index, make_store};

fn build_vs_dbsize(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_vs_dbsize");
    for size in [50usize, 200, 500] {
        let store = make_store(size);
        group.bench_with_input(BenchmarkId::new("bulk_load", size), &store, |b, store| {
            b.iter(|| black_box(make_index(store)));
        });
    }
    group.finish();
}

criterion_group!(benches, build_vs_dbsize);
criterion_main!(benches);
