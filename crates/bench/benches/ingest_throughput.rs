//! Ingestion throughput: what batching buys on the durable write path.
//!
//! Every row moves the same 64 records per iteration, so means are
//! directly comparable across rows:
//!
//! * `single_64/<policy>` — 64 one-record [`Session::insert`] calls: one
//!   WAL append and one application of the fsync policy *per record*
//!   (`always` pays 64 disk syncs per iteration);
//! * `batch_64/<policy>` — one [`Session::insert_batch`] group commit:
//!   one WAL write, one fsync-policy application, one epoch publish;
//! * `single_64/always_held` / `batch_64/always_held` — the same under
//!   held-snapshot pressure: a reader pins the pre-ingest epoch for the
//!   whole run, forcing copy-on-write on every publish — cheap now that
//!   a shard clone is two `Arc` bumps plus its delta buffer;
//! * `single_64/in_memory` / `batch_64/in_memory` — the no-durability
//!   floor: pure routing + delta append + epoch publish.
//!
//! The benched sessions use a high delta-merge threshold: folding the
//! delta into the tree is the *same* amortised indexing work in both
//! paths (and is benchmarked by `build_vs_dbsize`), so letting merges
//! fire here would only blur the logging cost these rows isolate.
//!
//! `check_ingest_regression` gates on `single_64/always` staying at
//! least `TRAJ_INGEST_FACTOR` (default 5) times slower than
//! `batch_64/always` — i.e. batched ingest keeps its group-commit win.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;
use traj_bench::make_store;
use traj_index::{DurabilityConfig, FsyncPolicy, Session, TrajStore};

/// Records per iteration, in every row.
const BATCH: usize = 64;
/// Keeps merges out of the measured loop (see module docs).
const NO_MERGE: usize = 1 << 20;

/// A scratch database directory, unique per label and process.
fn scratch(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("traj-bench-ingest-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable(dir: &PathBuf, policy: FsyncPolicy) -> Session {
    Session::builder()
        .shards(2)
        .delta_merge_threshold(NO_MERGE)
        .durability(
            DurabilityConfig::default()
                .fsync(policy)
                .compact_after(None),
        )
        .open(dir)
        .expect("open bench database")
}

fn ingest_throughput(c: &mut Criterion) {
    let trajs = make_store(600).into_vec();
    let mut group = c.benchmark_group("ingest_throughput");

    for (name, policy) in [
        ("always", FsyncPolicy::Always),
        ("every_32", FsyncPolicy::EveryN(32)),
        ("os_managed", FsyncPolicy::OsManaged),
    ] {
        group.bench_with_input(BenchmarkId::new("single_64", name), &policy, |b, &p| {
            let dir = scratch(&format!("single-{name}"));
            let session = durable(&dir, p);
            let mut i = 0usize;
            b.iter(|| {
                for _ in 0..BATCH {
                    let id = session
                        .insert(trajs[i % trajs.len()].clone())
                        .expect("durable insert");
                    i += 1;
                    black_box(id);
                }
            });
            drop(session);
            let _ = std::fs::remove_dir_all(&dir);
        });

        group.bench_with_input(BenchmarkId::new("batch_64", name), &policy, |b, &p| {
            let dir = scratch(&format!("batch-{name}"));
            let session = durable(&dir, p);
            let mut i = 0usize;
            b.iter(|| {
                let batch: Vec<_> = (0..BATCH)
                    .map(|_| {
                        let t = trajs[i % trajs.len()].clone();
                        i += 1;
                        t
                    })
                    .collect();
                black_box(session.insert_batch(batch).expect("group commit").len())
            });
            drop(session);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }

    // Held-snapshot pressure: a pinned epoch forces copy-on-write on
    // every publish for the whole measured run.
    group.bench_function(BenchmarkId::new("single_64", "always_held"), |b| {
        let dir = scratch("single-held");
        let session = durable(&dir, FsyncPolicy::Always);
        session
            .insert_batch(trajs.clone())
            .expect("seed the pinned epoch");
        let pinned = session.snapshot();
        let mut i = 0usize;
        b.iter(|| {
            for _ in 0..BATCH {
                let id = session
                    .insert(trajs[i % trajs.len()].clone())
                    .expect("durable insert");
                i += 1;
                black_box(id);
            }
        });
        black_box(pinned.len());
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.bench_function(BenchmarkId::new("batch_64", "always_held"), |b| {
        let dir = scratch("batch-held");
        let session = durable(&dir, FsyncPolicy::Always);
        session
            .insert_batch(trajs.clone())
            .expect("seed the pinned epoch");
        let pinned = session.snapshot();
        let mut i = 0usize;
        b.iter(|| {
            let batch: Vec<_> = (0..BATCH)
                .map(|_| {
                    let t = trajs[i % trajs.len()].clone();
                    i += 1;
                    t
                })
                .collect();
            black_box(session.insert_batch(batch).expect("group commit").len())
        });
        black_box(pinned.len());
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    });

    // The no-durability floor for both shapes.
    group.bench_function(BenchmarkId::new("single_64", "in_memory"), |b| {
        let session = Session::builder()
            .shards(2)
            .delta_merge_threshold(NO_MERGE)
            .build(TrajStore::new());
        let mut i = 0usize;
        b.iter(|| {
            for _ in 0..BATCH {
                let id = session
                    .insert(trajs[i % trajs.len()].clone())
                    .expect("in-memory insert");
                i += 1;
                black_box(id);
            }
        });
    });

    group.bench_function(BenchmarkId::new("batch_64", "in_memory"), |b| {
        let session = Session::builder()
            .shards(2)
            .delta_merge_threshold(NO_MERGE)
            .build(TrajStore::new());
        let mut i = 0usize;
        b.iter(|| {
            let batch: Vec<_> = (0..BATCH)
                .map(|_| {
                    let t = trajs[i % trajs.len()].clone();
                    i += 1;
                    t
                })
                .collect();
            black_box(session.insert_batch(batch).expect("in-memory batch").len())
        });
    });

    group.finish();
}

criterion_group!(benches, ingest_throughput);
criterion_main!(benches);
