//! k-NN query latency (k = 10) as the database grows: with pruning the
//! curve should grow sublinearly on clustered data, unlike a linear scan.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_queries, make_store};

fn query_vs_dbsize(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_vs_dbsize");
    for size in [100usize, 300, 900] {
        let store = make_store(size);
        let queries = make_queries(&store, 8);
        let mut session = traj_index::Session::build(store);
        group.bench_with_input(BenchmarkId::new("knn_k10", size), &size, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(session.query(q).knn(10))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, query_vs_dbsize);
criterion_main!(benches);
