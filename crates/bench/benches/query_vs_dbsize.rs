//! k-NN query latency (k = 10) as the database grows: with pruning the
//! curve should grow sublinearly on clustered data, unlike a linear scan.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_index, make_queries, make_store};

fn query_vs_dbsize(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_vs_dbsize");
    for size in [100usize, 300, 900] {
        let store = make_store(size);
        let tree = make_index(&store);
        let queries = make_queries(&store, 8);
        group.bench_with_input(
            BenchmarkId::new("knn_k10", size),
            &(store, tree, queries),
            |b, (store, tree, queries)| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box(tree.knn(store, q, 10))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, query_vs_dbsize);
criterion_main!(benches);
