//! Whole-trajectory vs sub-trajectory matching on the same database and
//! the same partial-trip probes — the cost of the new query mode and the
//! value of its index path. Four rows:
//!
//! * `whole_knn` — the partial probes answered end-to-end (`edwp`): the
//!   baseline a partial-trip lookup would have to settle for without the
//!   mode;
//! * `sub_knn` — the same probes through `.sub().knn(k)`: best-first over
//!   the TrajTree pruned by the admissible sub-trajectory box bound;
//! * `sub_knn_brute` — `.sub().brute_force()`: the linear `edwp_sub` scan
//!   the index path is measured against (expect the index to win by the
//!   pruning ratio);
//! * `sub_batch_t4` — the whole probe set as one 4-worker batch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_store, make_sub_queries};
use traj_index::Session;

fn query_vs_sub(c: &mut Criterion) {
    let store = make_store(400);
    let queries = make_sub_queries(&store, 16);
    let mut session = Session::build(store);
    let mut group = c.benchmark_group("query_vs_sub");
    let k = 10usize;

    group.bench_with_input(BenchmarkId::new("whole_knn", k), &k, |b, _| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(session.query(q).knn(k))
        });
    });
    group.bench_with_input(BenchmarkId::new("sub_knn", k), &k, |b, _| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(session.query(q).sub().knn(k))
        });
    });
    group.bench_with_input(BenchmarkId::new("sub_knn_brute", k), &k, |b, _| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(session.query(q).sub().brute_force().knn(k))
        });
    });
    group.bench_with_input(BenchmarkId::new("sub_batch_t4", k), &k, |b, _| {
        b.iter(|| black_box(session.batch(&queries).sub().threads(4).knn(k)));
    });
    group.finish();
}

criterion_group!(benches, query_vs_sub);
criterion_main!(benches);
