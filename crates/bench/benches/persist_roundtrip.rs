//! Durable storage engine costs on a fixed 600-trajectory database:
//!
//! * `wal_append` — one logged insert per fsync policy (`Always` pays a
//!   disk sync per record; `every_32` group-commits; `os_managed` leaves
//!   flushing to the page cache), measuring what durability adds to the
//!   in-memory insert path;
//! * `snapshot_write` — one full compaction (encode + checksum + write +
//!   fsync + atomic rename), the cost amortised over
//!   `compact_after_records` inserts;
//! * `recover_open` — a full cold open: load + verify the snapshot,
//!   replay a 128-record log, rebuild the shard trees — the startup tax a
//!   reopened session pays once.
//!
//! Results land in `target/bench-results/persist_roundtrip.json` like
//! every other suite; the recovery row is the one to watch as the format
//! evolves.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;
use traj_bench::make_store;
use traj_index::{DurabilityConfig, FsyncPolicy, Session, TrajStore};

/// A scratch database directory, unique per label and process.
fn scratch(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("traj-bench-persist-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persist_roundtrip(c: &mut Criterion) {
    let trajs = make_store(600).into_vec();
    let mut group = c.benchmark_group("persist_roundtrip");

    for (name, policy) in [
        ("always", FsyncPolicy::Always),
        ("every_32", FsyncPolicy::EveryN(32)),
        ("os_managed", FsyncPolicy::OsManaged),
    ] {
        group.bench_with_input(BenchmarkId::new("wal_append", name), &policy, |b, &p| {
            let dir = scratch(name);
            let session = Session::builder()
                .shards(2)
                .durability(DurabilityConfig::default().fsync(p).compact_after(None))
                .open(&dir)
                .expect("open");
            let mut i = 0usize;
            b.iter(|| {
                let id = session
                    .insert(trajs[i % trajs.len()].clone())
                    .expect("durable insert");
                i += 1;
                black_box(id)
            });
            drop(session);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }

    // Group commit vs the same 64 records logged one by one — the
    // per-batch counterpart of the per-record `wal_append` rows (divide
    // by 64 to compare; `ingest_throughput` sweeps this properly).
    group.bench_function("group_append_64", |b| {
        let dir = scratch("group");
        let session = Session::builder()
            .shards(2)
            .durability(DurabilityConfig::default().compact_after(None))
            .open(&dir)
            .expect("open");
        let mut i = 0usize;
        b.iter(|| {
            let batch: Vec<_> = (0..64)
                .map(|_| {
                    let t = trajs[i % trajs.len()].clone();
                    i += 1;
                    t
                })
                .collect();
            black_box(session.insert_batch(batch).expect("group commit").len())
        });
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.bench_function("snapshot_write", |b| {
        let dir = scratch("snapshot");
        let session = Session::builder()
            .shards(2)
            .durability(DurabilityConfig::default().compact_after(None))
            .open(&dir)
            .expect("open");
        for t in &trajs {
            session.insert(t.clone()).expect("durable insert");
        }
        b.iter(|| session.compact().expect("compact"));
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.bench_function("recover_open", |b| {
        let dir = scratch("recover");
        let session = Session::builder()
            .shards(2)
            .durability(DurabilityConfig::default().compact_after(None))
            .open(&dir)
            .expect("open");
        // Snapshot all but the last 128, leaving a realistic log to replay.
        let (snapshotted, logged) = trajs.split_at(trajs.len() - 128);
        for t in snapshotted {
            session.insert(t.clone()).expect("durable insert");
        }
        session.compact().expect("compact");
        for t in logged {
            session.insert(t.clone()).expect("durable insert");
        }
        drop(session);
        b.iter(|| {
            let session = Session::builder().open(&dir).expect("cold open");
            black_box(session.len())
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    // The in-memory baseline the durable rows are read against: same
    // empty starting point, same insert stream, no engine.
    group.bench_function("in_memory_insert_baseline", |b| {
        let session = Session::builder().shards(2).build(TrajStore::new());
        let mut i = 0usize;
        b.iter(|| {
            let id = session
                .insert(trajs[i % trajs.len()].clone())
                .expect("in-memory insert");
            i += 1;
            black_box(id)
        });
    });

    group.finish();
}

criterion_group!(benches, persist_roundtrip);
criterion_main!(benches);
