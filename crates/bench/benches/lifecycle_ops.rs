//! Lifecycle operation costs: what deletion and online rebalancing add
//! on top of the ingest and query paths.
//!
//! * `churn_64/<mode>` — one full churn cycle per iteration: a 64-record
//!   group commit followed by a 64-id [`Session::remove_batch`], with the
//!   delta-merge threshold at 64 so folds fire every cycle and drop the
//!   dead delta entries physically. Entries that fold *before* their
//!   removal land in the base as tombstones, so every 16th cycle runs a
//!   same-count [`Session::reshard`] — the in-memory vacuum — keeping
//!   the session bounded; its amortised cost is part of the honest
//!   steady-state price of a workload that retires data as fast as it
//!   ingests it. Measured in memory and through the WAL (`OsManaged`, so
//!   the tombstone group's append cost is visible but fsync latency is
//!   not).
//! * `reshard/4` — [`Session::reshard`] on a durable 600-trip session:
//!   re-deal the live set from memory, STR-rebuild the trees with
//!   rolled-up internal summaries, append one Reshard record, publish
//!   one epoch.
//! * `full_rebuild/4` — the offline alternative the online path must
//!   beat: a cold [`SessionBuilder::build`] over the same 600
//!   trajectories at 4 shards (full merge-DP summaries at every level).
//!   `check_reshard_regression` gates `reshard/4` at no more than
//!   `TRAJ_RESHARD_FACTOR` (default 0.5) of this row — online
//!   rebalancing must stay at least twice as fast as rebuilding from
//!   scratch.
//! * `post_delete_query/<row>` — 10-NN latency over a session with a
//!   third of its base tombstoned versus a clean session holding only
//!   the survivors. Tombstones leave node summaries stale-but-admissible
//!   (dead members are skipped at refinement, never re-summarised), so
//!   this pair shows what the skip costs before a vacuum reclaims it.
//!
//! [`SessionBuilder::build`]: traj_index::SessionBuilder::build

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;
use traj_bench::{make_queries, make_store};
use traj_index::{DurabilityConfig, FsyncPolicy, Session, TrajId, TrajStore};

/// Records inserted and removed per churn iteration.
const BATCH: usize = 64;
/// Churn cycles between same-count reshard vacuums.
const VACUUM_EVERY: usize = 16;
/// Database size for the reshard and post-delete rows.
const DB: usize = 600;

/// A scratch database directory, unique per label and process.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "traj-bench-lifecycle-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn lifecycle_ops(c: &mut Criterion) {
    let trajs = make_store(DB).into_vec();
    let mut group = c.benchmark_group("lifecycle_ops");

    // Churn: insert a batch, retire it, fold it out; vacuum periodically.
    group.bench_function(BenchmarkId::new("churn_64", "in_memory"), |b| {
        let session = Session::builder()
            .shards(2)
            .delta_merge_threshold(BATCH)
            .build(TrajStore::new());
        let mut i = 0usize;
        let mut cycles = 0usize;
        b.iter(|| {
            let batch: Vec<_> = (0..BATCH)
                .map(|_| {
                    let t = trajs[i % trajs.len()].clone();
                    i += 1;
                    t
                })
                .collect();
            let ids = session.insert_batch(batch).expect("churn insert");
            session.remove_batch(&ids).expect("churn remove");
            cycles += 1;
            if cycles.is_multiple_of(VACUUM_EVERY) {
                session.reshard(2).expect("churn vacuum");
            }
            black_box(session.len())
        });
    });

    group.bench_function(BenchmarkId::new("churn_64", "durable"), |b| {
        let dir = scratch("churn");
        let session = Session::builder()
            .shards(2)
            .delta_merge_threshold(BATCH)
            .durability(
                DurabilityConfig::default()
                    .fsync(FsyncPolicy::OsManaged)
                    .compact_after(None),
            )
            .open(&dir)
            .expect("open bench database");
        let mut i = 0usize;
        let mut cycles = 0usize;
        b.iter(|| {
            let batch: Vec<_> = (0..BATCH)
                .map(|_| {
                    let t = trajs[i % trajs.len()].clone();
                    i += 1;
                    t
                })
                .collect();
            let ids = session.insert_batch(batch).expect("churn insert");
            session.remove_batch(&ids).expect("churn remove");
            cycles += 1;
            if cycles.is_multiple_of(VACUUM_EVERY) {
                session.reshard(2).expect("churn vacuum");
            }
            black_box(session.len())
        });
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    });

    // Online reshard versus the cold rebuild it replaces. Both rows end
    // on a 4-shard layout over the same 600 live trips; `reshard`
    // re-deals from live memory with rolled-up summaries (plus one WAL
    // record), `full_rebuild` runs the full offline bulk load.
    group.bench_function(BenchmarkId::new("reshard", "4"), |b| {
        let dir = scratch("reshard");
        let session = Session::builder()
            .shards(4)
            .durability(
                DurabilityConfig::default()
                    .fsync(FsyncPolicy::OsManaged)
                    .compact_after(None),
            )
            .open(&dir)
            .expect("open bench database");
        session.insert_batch(trajs.clone()).expect("seed");
        b.iter(|| {
            session.reshard(4).expect("online reshard");
            black_box(session.num_shards())
        });
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.bench_function(BenchmarkId::new("full_rebuild", "4"), |b| {
        b.iter(|| {
            let session = Session::builder()
                .shards(4)
                .build(TrajStore::from(trajs.clone()));
            black_box(session.num_shards())
        });
    });

    // Query latency with a third of the base dead versus a clean session
    // of just the survivors.
    let queries = make_queries(&TrajStore::from(trajs.clone()), 8);
    let retired: Vec<TrajId> = (0..DB as u32).step_by(3).collect();
    let survivors: Vec<_> = trajs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(_, t)| t.clone())
        .collect();

    group.bench_function(
        BenchmarkId::new("post_delete_query", "tombstoned_third"),
        |b| {
            let session = Session::builder()
                .shards(2)
                .build(TrajStore::from(trajs.clone()));
            session.remove_batch(&retired).expect("retire a third");
            let snap = session.snapshot();
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(snap.query(q).knn(10).neighbors.len())
            });
        },
    );

    group.bench_function(
        BenchmarkId::new("post_delete_query", "clean_baseline"),
        |b| {
            let session = Session::builder()
                .shards(2)
                .build(TrajStore::from(survivors.clone()));
            let snap = session.snapshot();
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(snap.query(q).knn(10).neighbors.len())
            });
        },
    );

    group.finish();
}

criterion_group!(benches, lifecycle_ops);
criterion_main!(benches);
