//! Range-query latency as the ε-ball widens: ε is calibrated from the
//! workload itself (multiples of a probe query's 10th-neighbour distance),
//! so tight balls should stay near the pruned-k-NN cost while ε → ∞
//! degrades towards a full linear scan.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use traj_bench::{make_queries, make_store};

fn range_vs_eps(c: &mut Criterion) {
    let store = make_store(400);
    let queries = make_queries(&store, 8);
    let mut session = traj_index::Session::build(store);
    // Calibrate: the 10th-neighbour distance of the first probe query.
    let d10 = session.query(&queries[0]).knn(10).neighbors[9].distance;
    let mut group = c.benchmark_group("range_vs_eps");
    for (label, scale) in [("quarter_d10", 0.25), ("d10", 1.0), ("4x_d10", 4.0)] {
        let eps = d10 * scale;
        group.bench_with_input(BenchmarkId::new("range", label), &eps, |b, &eps| {
            // The session's pooled scratch serves every call, like a
            // serving loop would — the eps-scaling curve should not
            // include per-call allocation overhead.
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(session.query(q).range(eps))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, range_vs_eps);
criterion_main!(benches);
